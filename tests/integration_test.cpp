// End-to-end tests: real engine + events + trackers + controller, including
// miniature versions of the paper's §5 scenarios (scaled down for CI).

#include <gtest/gtest.h>

#include <numeric>

#include "adg/best_effort.hpp"
#include "workload/wordcount.hpp"

namespace askel {
namespace {

/// Tiny paper profile: sequential WCT ≈ 0.30 s instead of 12.5 s.
PaperTimings tiny_timings() {
  PaperTimings t;
  t.scale = 0.024;
  return t;
}

ScenarioConfig tiny_scenario(double goal_paper_seconds) {
  ScenarioConfig cfg;
  cfg.timings = tiny_timings();
  cfg.corpus.num_tweets = 600;
  cfg.wct_goal = goal_paper_seconds;
  cfg.max_lp = 24;
  return cfg;
}

TEST(TrackedRun, SnapshotAfterCompletionIsAllDoneAndBeEqualsHistory) {
  ResizableThreadPool pool(2, 4);
  EventBus bus;
  EstimateRegistry reg(0.5);
  TrackerSet trackers(reg);
  bus.add_listener(trackers.as_listener());
  Engine engine(pool, bus);

  auto fs = split_muscle<int, int>("fs", [](int n) {
    std::vector<int> v(n);
    std::iota(v.begin(), v.end(), 0);
    return v;
  });
  auto fe = execute_muscle<int, int>("fe", [](int x) {
    simulate_work(0.002);
    return x * x;
  });
  auto fm = merge_muscle<int, int>("fm", [](std::vector<int> v) {
    return std::accumulate(v.begin(), v.end(), 0);
  });
  auto skel = Map(fs, Seq(fe), fm);
  EXPECT_EQ(skel.input(5, engine).get(), 30);

  EXPECT_TRUE(trackers.root_finished());
  const TimePoint now = default_clock().now();
  const AdgSnapshot g = trackers.snapshot(now);
  EXPECT_TRUE(g.validate().empty()) << g.validate();
  EXPECT_EQ(g.size(), 7u);  // split + 5 fe + merge
  EXPECT_EQ(g.count(ActivityState::kDone), 7u);
  // For an all-done snapshot the best-effort WCT is the actual end time.
  EXPECT_LE(best_effort(g).wct, now);
  // Estimates were learned for all three muscles.
  EXPECT_TRUE(reg.t(fs.m->id()).has_value());
  EXPECT_TRUE(reg.t(fe.m->id()).has_value());
  EXPECT_TRUE(reg.t(fm.m->id()).has_value());
  EXPECT_NEAR(*reg.cardinality(fs.m->id()), 5.0, 1e-9);
}

TEST(TrackedRun, MidRunSnapshotsStayTopologicallyValid) {
  ResizableThreadPool pool(2, 4);
  EventBus bus;
  EstimateRegistry reg(0.5);
  TrackerSet trackers(reg);
  bus.add_listener(trackers.as_listener());
  Engine engine(pool, bus);

  auto fs = split_muscle<int, int>("fs", [](int n) {
    return std::vector<int>(static_cast<std::size_t>(n), 3);
  });
  auto fe = execute_muscle<int, int>("fe", [](int x) {
    simulate_work(0.005);
    return x;
  });
  auto fm = merge_muscle<int, int>("fm", [](std::vector<int> v) {
    return static_cast<int>(v.size());
  });
  auto skel = Map(fs, Seq(fe), fm);
  Future<int> fut = skel.input(8, engine);
  // Hammer snapshots while the run progresses.
  for (int k = 0; k < 50; ++k) {
    const AdgSnapshot g = trackers.snapshot(default_clock().now());
    EXPECT_TRUE(g.validate().empty()) << g.validate();
  }
  EXPECT_EQ(fut.get(), 8);
}

TEST(Controller, DisarmedControllerNeverActs) {
  ScenarioConfig cfg = tiny_scenario(1000.0);  // absurdly generous goal
  const ScenarioResult res = run_wordcount_scenario(cfg);
  // Generous goal → the only admissible actions are decreases, and LP already
  // starts at 1, so no action at all.
  EXPECT_TRUE(res.actions.empty());
  EXPECT_EQ(res.final_lp, 1);
  EXPECT_EQ(res.counts, res.expected);
}

TEST(Controller, GoalWellAboveSequentialWctNeverRaisesLp) {
  // Paper: "any goal greater than 12.5 secs won't produce the necessity of
  // an LP increase". A cold-started estimator conflates the outer (6.4 s)
  // and inner (0.91 s) costs of the SHARED fs and overestimates remaining
  // work ≈3×, so the paper's boundary only binds the controller once the
  // goal clears that overestimate too.
  ScenarioConfig cfg = tiny_scenario(40.0);
  const ScenarioResult res = run_wordcount_scenario(cfg);
  for (const auto& a : res.actions) EXPECT_LT(a.to_lp, a.from_lp + 1);
  EXPECT_EQ(res.peak_busy, 1);
  EXPECT_EQ(res.counts, res.expected);
}


TEST(Controller, TightGoalRaisesLpAndBeatsSequentialTime) {
  ScenarioConfig cfg = tiny_scenario(9.5);  // the paper's scenario-1 goal
  const ScenarioResult res = run_wordcount_scenario(cfg);
  EXPECT_EQ(res.counts, res.expected);
  EXPECT_GT(res.peak_busy, 1);
  ASSERT_FALSE(res.actions.empty());
  // First adaptation can only happen once every muscle has run once: that is
  // after the first inner merge, i.e. after the outer split completed.
  EXPECT_GT(res.actions.front().t, cfg.timings.scaled_outer_split());
  // The run must beat the sequential time by a clear margin.
  EXPECT_LT(res.wct, cfg.timings.sequential_wct() * 0.95);
}

TEST(Controller, InitializationEnablesEarlierAdaptation) {
  // Paper scenario 2: with initialized estimates the first LP increase comes
  // right after the outer split (6.4 s scaled), before any merge has run.
  ScenarioConfig cfg = tiny_scenario(9.5);
  const ScenarioResult first = run_wordcount_scenario(cfg);
  ASSERT_FALSE(first.actions.empty());

  const ScenarioResult second = run_wordcount_scenario(cfg, &first.final_estimates);
  ASSERT_FALSE(second.actions.empty());
  // The initialized run adapts strictly earlier than the cold run.
  EXPECT_LT(second.actions.front().t, first.actions.front().t);
  // And no later than shortly after the outer split ends (the first event).
  EXPECT_LT(second.actions.front().t, cfg.timings.scaled_outer_split() * 1.5);
  EXPECT_EQ(second.counts, second.expected);
}

namespace {

/// Time-weighted mean of the busy-thread step function over the whole run.
/// This is the robust rendering of the paper's Fig. 5 vs Fig. 7 comparison:
/// a looser goal consumes less parallelism on average (momentary end-of-run
/// spikes from a near-deadline re-plan don't dominate it).
double mean_busy(const ScenarioResult& r) {
  if (r.busy_series.empty() || r.wct <= 0.0) return 0.0;
  double acc = 0.0, prev_t = 0.0, cur = 0.0;
  for (const Sample& s : r.busy_series) {
    acc += cur * (s.t - prev_t);
    prev_t = s.t;
    cur = s.value;
  }
  acc += cur * (r.wct - prev_t);
  return acc / r.wct;
}

}  // namespace

TEST(Controller, LooserGoalUsesFewerThreadsOnAverage) {
  // Paper scenario 3 vs scenario 1: the 10.5 s goal allocates less
  // parallelism than the 9.5 s goal (paper peaks: 10 vs 17 threads).
  ScenarioConfig tight = tiny_scenario(9.0);
  ScenarioConfig loose = tiny_scenario(11.5);
  const ScenarioResult t = run_wordcount_scenario(tight);
  const ScenarioResult l = run_wordcount_scenario(loose);
  EXPECT_LE(mean_busy(l), mean_busy(t) * 1.15 + 0.25);
  EXPECT_EQ(t.counts, t.expected);
  EXPECT_EQ(l.counts, l.expected);
}

TEST(Controller, MaxLpGoalCapsAllocation) {
  ScenarioConfig cfg = tiny_scenario(8.5);
  cfg.max_lp = 3;
  const ScenarioResult res = run_wordcount_scenario(cfg);
  for (const auto& a : res.actions) EXPECT_LE(a.to_lp, 3);
  EXPECT_LE(res.peak_busy, 3);
  EXPECT_EQ(res.counts, res.expected);
}

TEST(Controller, PerDepthEstimationSeparatesSharedSplitLevels) {
  // The context-sensitive extension: after a run, the shared fs keeps
  // distinct per-depth durations (≈6.4 s vs ≈0.91 s paper-scale) while the
  // aggregate estimate sits in between — the conflation the paper's §5
  // analysis works around.
  ScenarioConfig cfg = tiny_scenario(9.5);
  cfg.scope = EstimationScope::kPerDepth;
  const ScenarioResult res = run_wordcount_scenario(cfg);
  EXPECT_EQ(res.counts, res.expected);
  const auto& named = res.final_estimates;
  ASSERT_TRUE(named.count("fs@0"));
  ASSERT_TRUE(named.count("fs@1"));
  const double outer = *named.at("fs@0").t;
  const double inner = *named.at("fs@1").t;
  EXPECT_GT(outer, inner * 4.0);  // paper ratio ≈ 7×
  const double scale = cfg.timings.scale;
  EXPECT_NEAR(outer, 6.4 * scale, 6.4 * scale * 0.5);
  EXPECT_NEAR(inner, 0.914 * scale, 0.914 * scale * 0.9);
}

TEST(Controller, PerDepthScenarioMeetsGoalWithoutRamping) {
#ifdef ASKEL_TSAN
  // The assertion below is about *wall-clock* controller behavior: muscle
  // durations must track their estimates. ThreadSanitizer's ~10x
  // nondeterministic slowdown inflates framework time between the timed
  // sleeps, so estimate drift triggers ramping that never happens in real
  // builds. Race coverage for these code paths lives in stress_test.cpp.
  GTEST_SKIP() << "wall-clock assertion unreliable under TSan";
#endif
  // With accurate per-depth estimates the controller computes exact minimal
  // allocations instead of blind ramping (see bench/ablation_context).
  ScenarioConfig cfg = tiny_scenario(9.5);
  cfg.scope = EstimationScope::kPerDepth;
  const ScenarioResult warm = run_wordcount_scenario(cfg);
  const ScenarioResult res = run_wordcount_scenario(cfg, &warm.final_estimates);
  EXPECT_EQ(res.counts, res.expected);
  // All increases must be goal-derived, not unachievable-ramps.
  for (const auto& a : res.actions) {
    EXPECT_NE(a.reason, DecisionReason::kUnachievableRamp)
        << "t=" << a.t << " " << a.from_lp << "->" << a.to_lp;
  }
}

TEST(Controller, EvaluateNowWorksWithoutEvents) {
  ResizableThreadPool pool(1, 4);
  EstimateRegistry reg(0.5);
  TrackerSet trackers(reg);
  AutonomicController ctl(pool, trackers);
  ctl.arm(1.0);
  const Decision d = ctl.evaluate_now();
  EXPECT_EQ(d.reason, DecisionReason::kEmptySnapshot);
  EXPECT_EQ(ctl.evaluations(), 1);
  EXPECT_TRUE(ctl.actions().empty());
}

TEST(Controller, ArmAndDisarmLifecycle) {
  ResizableThreadPool pool(1, 4);
  EstimateRegistry reg(0.5);
  TrackerSet trackers(reg);
  AutonomicController ctl(pool, trackers);
  EXPECT_FALSE(ctl.armed());
  ctl.arm(5.0);
  EXPECT_TRUE(ctl.armed());
  EXPECT_GT(ctl.goal_abs(), 0.0);
  ctl.disarm();
  EXPECT_FALSE(ctl.armed());
}

}  // namespace
}  // namespace askel
