// MuscleTable + POD codec unit suite: the wire representation of named
// muscles. The codec is a protocol (versioned, fixed layout, little-endian)
// — golden bytes are pinned the same way the frame protocol's are, and
// every malformed-input class must be REJECTED, never partially decoded.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/muscle_table.hpp"
#include "runtime/transport.hpp"

namespace askel {
namespace {

// ------------------------------------------------------------------ codec --

TEST(PodCodec, RoundTripsEveryTag) {
  const PodValue values[] = {
      PodValue::of_void(),
      PodValue::of_i64(-0x0123456789ABCDEFll),
      PodValue::of_u64(0xFFFFFFFFFFFFFFFFull),
      PodValue::of_f64(-2.5e300),
      PodValue::of_bytes(std::string("hello\0wire", 10)),
      PodValue::of_bytes(""),
  };
  for (const PodValue& v : values) {
    const std::vector<std::uint8_t> wire = encode_pod(v);
    PodValue back;
    ASSERT_TRUE(decode_pod(wire.data(), wire.size(), back))
        << "tag " << to_string(v.tag());
    EXPECT_EQ(back, v) << "tag " << to_string(v.tag());
  }
}

TEST(PodCodec, GoldenBytesAreVersionedAndLittleEndian) {
  // The codec is a protocol: these bytes must never change under version 1.
  const std::vector<std::uint8_t> wire = encode_pod(PodValue::of_i64(2));
  const std::uint8_t expected[] = {
      1,           // version
      1,           // tag kI64
      0, 0,        // reserved
      8, 0, 0, 0,  // body_len
      2, 0, 0, 0, 0, 0, 0, 0,  // little-endian body
  };
  ASSERT_EQ(wire.size(), sizeof(expected));
  EXPECT_TRUE(std::equal(wire.begin(), wire.end(), expected));
}

TEST(PodCodec, NegativeIntegersUseTwosComplement) {
  const std::vector<std::uint8_t> wire = encode_pod(PodValue::of_i64(-1));
  ASSERT_EQ(wire.size(), kPodHeaderSize + 8);
  for (std::size_t k = kPodHeaderSize; k < wire.size(); ++k) {
    EXPECT_EQ(wire[k], 0xFF);
  }
}

TEST(PodCodec, RejectsEveryMalformedClass) {
  PodValue out;
  // Null / truncated header.
  EXPECT_FALSE(decode_pod(nullptr, 0, out));
  std::vector<std::uint8_t> wire = encode_pod(PodValue::of_u64(7));
  EXPECT_FALSE(decode_pod(wire.data(), kPodHeaderSize - 1, out));
  // Unknown version.
  wire[0] = 2;
  EXPECT_FALSE(decode_pod(wire.data(), wire.size(), out));
  // Unknown tag.
  wire = encode_pod(PodValue::of_u64(7));
  wire[1] = 9;
  EXPECT_FALSE(decode_pod(wire.data(), wire.size(), out));
  // Non-zero reserved bytes.
  wire = encode_pod(PodValue::of_u64(7));
  wire[2] = 1;
  EXPECT_FALSE(decode_pod(wire.data(), wire.size(), out));
  // Truncated body.
  wire = encode_pod(PodValue::of_u64(7));
  EXPECT_FALSE(decode_pod(wire.data(), wire.size() - 1, out));
  // Trailing bytes.
  wire = encode_pod(PodValue::of_u64(7));
  wire.push_back(0);
  EXPECT_FALSE(decode_pod(wire.data(), wire.size(), out));
  // Body length that disagrees with a scalar tag.
  wire = encode_pod(PodValue::of_bytes("1234"));  // body_len 4...
  wire[1] = 2;                                    // ...relabelled kU64
  EXPECT_FALSE(decode_pod(wire.data(), wire.size(), out));
  // A scalar-sized body relabelled void.
  wire = encode_pod(PodValue::of_u64(7));
  wire[1] = 0;
  EXPECT_FALSE(decode_pod(wire.data(), wire.size(), out));
}

TEST(PodCodec, WrongFlavorAccessorsReturnZeroNotGarbage) {
  const PodValue v = PodValue::of_i64(-5);
  EXPECT_EQ(v.as_u64(), 0u);
  EXPECT_EQ(v.as_f64(), 0.0);
  EXPECT_TRUE(v.as_bytes().empty());
  EXPECT_EQ(v.as_i64(), -5);
}

// --------------------------------------------------------------- registry --

TEST(MuscleTable, IdsAreDenseStableAndNeverZero) {
  MuscleTable t;
  const WireMuscleId a = t.register_muscle("alpha", [](const PodValue& v) {
    return v;
  });
  const WireMuscleId b = t.register_muscle("beta", [](const PodValue&) {
    return PodValue::of_void();
  });
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.id_of("alpha"), a);
  EXPECT_EQ(t.id_of("beta"), b);
  EXPECT_EQ(t.name_of(a), "alpha");
  EXPECT_FALSE(t.id_of("gamma").has_value());
  EXPECT_FALSE(t.name_of(0).has_value());
  EXPECT_FALSE(t.name_of(3).has_value());
}

TEST(MuscleTable, ReRegistrationKeepsTheWireIdSwapsTheFunction) {
  MuscleTable t;
  const WireMuscleId id = t.register_muscle(
      "f", [](const PodValue&) { return PodValue::of_i64(1); });
  PodValue out;
  ASSERT_TRUE(t.invoke(id, PodValue::of_void(), out));
  EXPECT_EQ(out.as_i64(), 1);
  const WireMuscleId again = t.register_muscle(
      "f", [](const PodValue&) { return PodValue::of_i64(2); });
  EXPECT_EQ(again, id);  // the wire id is STABLE across hot swaps
  EXPECT_EQ(t.size(), 1u);
  ASSERT_TRUE(t.invoke(id, PodValue::of_void(), out));
  EXPECT_EQ(out.as_i64(), 2);
}

TEST(MuscleTable, InvokeUnknownIdFailsWithoutExecuting) {
  MuscleTable t;
  t.register_muscle("only", [](const PodValue& v) { return v; });
  PodValue out = PodValue::of_i64(99);
  EXPECT_FALSE(t.invoke(0, PodValue::of_void(), out));
  EXPECT_FALSE(t.invoke(2, PodValue::of_void(), out));
  EXPECT_EQ(out.as_i64(), 99);  // untouched
}

TEST(MuscleTable, MuscleMayRegisterMusclesWhileInvoked) {
  // invoke() runs the function OUTSIDE the table lock — a muscle that
  // registers another muscle must not deadlock.
  MuscleTable t;
  const WireMuscleId id = t.register_muscle("self-extend", [&t](const PodValue&) {
    return PodValue::of_u64(t.register_muscle(
        "spawned", [](const PodValue& v) { return v; }));
  });
  PodValue out;
  ASSERT_TRUE(t.invoke(id, PodValue::of_void(), out));
  EXPECT_EQ(out.as_u64(), 2u);
  EXPECT_EQ(t.id_of("spawned"), 2u);
}

TEST(MuscleTable, DefaultTableIsProcessWideAndStable) {
  MuscleTable& a = default_muscle_table();
  MuscleTable& b = default_muscle_table();
  EXPECT_EQ(&a, &b);
}

TEST(PodCodec, ScalarEncodingsFitTheNamedPayloadCeiling) {
  // Every scalar tag must ship in one named frame; only kBytes can grow
  // past the ceiling (and the session layer refuses those before the wire).
  EXPECT_LE(encode_pod(PodValue::of_f64(1.0)).size(), kMaxNamedPayload);
  const std::string big(static_cast<std::size_t>(kMaxNamedPayload), 'x');
  EXPECT_GT(encode_pod(PodValue::of_bytes(big)).size(), kMaxNamedPayload);
}

}  // namespace
}  // namespace askel
