// Tests for adg/bounds: remaining work, Graham-style bounds, and their
// sandwich relation around the greedy list schedule.

#include <gtest/gtest.h>

#include <random>

#include "adg/bounds.hpp"
#include "adg/limited_lp.hpp"
#include "autonomic/decision.hpp"
#include "workload/paper_example.hpp"

namespace askel {
namespace {

TEST(Bounds, RemainingWorkCountsPendingAndRunningTails) {
  AdgSnapshot g;
  g.now = 10.0;
  g.add(make_done(0, "d", 0.0, 8.0, {}));            // contributes nothing
  g.add(make_running(0, "r", 6.0, 10.0, {}));        // 6 seconds left (ends 16)
  g.add(make_running(0, "r2", 2.0, 3.0, {}));        // overdue: 0 left
  g.add(make_pending(0, "p", 4.0, {}));
  EXPECT_DOUBLE_EQ(remaining_work(g), 10.0);
}

TEST(Bounds, WorkBoundDividesByLp) {
  AdgSnapshot g;
  g.now = 0.0;
  for (int k = 0; k < 8; ++k) g.add(make_pending(0, "p", 1.0, {}));
  EXPECT_DOUBLE_EQ(work_bound(g, 1), 8.0);
  EXPECT_DOUBLE_EQ(work_bound(g, 4), 2.0);
  EXPECT_DOUBLE_EQ(work_bound(g, 100), 0.08);
}

TEST(Bounds, GrahamBoundIsMaxOfCriticalPathAndWork) {
  AdgSnapshot g;
  g.now = 0.0;
  int prev = g.add(make_pending(0, "a", 3.0, {}));
  g.add(make_pending(0, "b", 3.0, {prev}));
  for (int k = 0; k < 4; ++k) g.add(make_pending(0, "c", 1.0, {}));
  // CP = 6; W = 10. lp=1: work bound 10 dominates; lp=8: CP dominates.
  EXPECT_DOUBLE_EQ(graham_bound(g, 1), 10.0);
  EXPECT_DOUBLE_EQ(graham_bound(g, 8), 6.0);
}

TEST(Bounds, ExactOnThePaperExample) {
  PaperExampleReplay r;
  r.replay_until(70.0);
  const AdgSnapshot g = r.snapshot(70.0);
  // Lower bound never exceeds the list schedule; upper never undercuts it.
  const double list2 = limited_lp(g, 2).wct;
  EXPECT_LE(graham_bound(g, 2), list2);
  EXPECT_GE(graham_upper(g, 2), list2);
  // With ample LP both converge to the critical path (best effort = 100).
  EXPECT_DOUBLE_EQ(graham_bound(g, 24), 100.0);
}

TEST(Bounds, EstimateWctDispatch) {
  AdgSnapshot g;
  g.now = 0.0;
  for (int k = 0; k < 4; ++k) g.add(make_pending(0, "p", 1.0, {}));
  EXPECT_DOUBLE_EQ(estimate_wct(g, 2, WctAlgorithm::kListSchedule), 2.0);
  EXPECT_DOUBLE_EQ(estimate_wct(g, 2, WctAlgorithm::kGrahamBound), 2.0);
}

class BoundsSandwich : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundsSandwich, GrahamSandwichesGreedyListScheduling) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> dur(0.1, 5.0);
  std::uniform_int_distribution<int> npreds(0, 3);
  AdgSnapshot g;
  g.now = 0.0;
  for (int k = 0; k < 24; ++k) {
    std::vector<int> preds;
    if (k > 0) {
      std::uniform_int_distribution<int> pick(0, k - 1);
      for (int j = npreds(rng); j > 0; --j) preds.push_back(pick(rng));
      std::sort(preds.begin(), preds.end());
      preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
    }
    g.add(make_pending(0, "x", dur(rng), std::move(preds)));
  }
  for (const int lp : {1, 2, 3, 5, 8}) {
    const double list = limited_lp(g, lp).wct;
    EXPECT_LE(graham_bound(g, lp), list + 1e-9) << "lp=" << lp;
    EXPECT_GE(graham_upper(g, lp) + 1e-9, list) << "lp=" << lp;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsSandwich,
                         ::testing::Values(3, 7, 11, 19, 23, 42, 77, 101));

TEST(Bounds, DecisionWithGrahamEstimatorStillMeetsSimpleCases) {
  // 8 × 1s, goal 2s: W/p bound needs p=4, same as the list schedule.
  AdgSnapshot g;
  g.now = 0.0;
  for (int k = 0; k < 8; ++k) g.add(make_pending(0, "p", 1.0, {}));
  DecisionConfig cfg;
  cfg.wct_algorithm = WctAlgorithm::kGrahamBound;
  const Decision d = decide(g, 2.0, 1, 16, cfg);
  EXPECT_EQ(d.new_lp, 4);
  EXPECT_EQ(d.reason, DecisionReason::kIncreaseToGoal);
}

}  // namespace
}  // namespace askel
