// Tests for workload/: corpus generation, token extraction, the calibrated
// wordcount skeleton, and the paper-example replay determinism.

#include <gtest/gtest.h>

#include "workload/paper_example.hpp"
#include "workload/wordcount.hpp"

namespace askel {
namespace {

TEST(TweetCorpus, DeterministicForSameSeed) {
  TweetCorpusConfig cfg;
  cfg.num_tweets = 100;
  EXPECT_EQ(generate_tweets(cfg), generate_tweets(cfg));
}

TEST(TweetCorpus, DifferentSeedsDiffer) {
  TweetCorpusConfig a, b;
  a.num_tweets = b.num_tweets = 100;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(generate_tweets(a), generate_tweets(b));
}

TEST(TweetCorpus, RespectsRequestedSize) {
  TweetCorpusConfig cfg;
  cfg.num_tweets = 321;
  EXPECT_EQ(generate_tweets(cfg).size(), 321u);
}

TEST(TweetCorpus, TokensComeFromTheConfiguredVocabularies) {
  TweetCorpusConfig cfg;
  cfg.num_tweets = 200;
  cfg.hashtag_vocab = 5;
  cfg.user_vocab = 3;
  for (const std::string& tweet : generate_tweets(cfg)) {
    for (const std::string& tok : extract_tags_and_mentions(tweet)) {
      if (tok[0] == '#') {
        const int n = std::stoi(tok.substr(4));
        EXPECT_LT(n, 5);
      } else {
        const int n = std::stoi(tok.substr(5));
        EXPECT_LT(n, 3);
      }
    }
  }
}

TEST(TweetCorpus, ZipfSkewMakesRankZeroMostCommon) {
  TweetCorpusConfig cfg;
  cfg.num_tweets = 5000;
  cfg.zipf_s = 1.2;
  Counts counts;
  for (const std::string& tweet : generate_tweets(cfg))
    for (std::string& tok : extract_tags_and_mentions(tweet)) ++counts[std::move(tok)];
  long top = counts["#tag0"];
  for (const auto& [tok, n] : counts) {
    if (tok.rfind("#tag", 0) == 0) {
      EXPECT_LE(n, top) << tok;
    }
  }
}

TEST(ExtractTokens, ParsesTagsAndMentions) {
  const auto toks = extract_tags_and_mentions("hola #tag1 mundo @user2 fin");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "#tag1");
  EXPECT_EQ(toks[1], "@user2");
}

TEST(ExtractTokens, EdgeCases) {
  EXPECT_TRUE(extract_tags_and_mentions("").empty());
  EXPECT_TRUE(extract_tags_and_mentions("plain words only").empty());
  // Bare markers with no body are ignored.
  EXPECT_TRUE(extract_tags_and_mentions("# @ #").empty());
  // Token at end of string.
  const auto toks = extract_tags_and_mentions("x #end");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0], "#end");
}

TEST(CountTokens, MatchesManualCount) {
  auto tweets = std::make_shared<const std::vector<std::string>>(
      std::vector<std::string>{"#a @b", "#a", "w #a @c"});
  TweetDoc doc{tweets, 0, 3, 2, 1.0};
  const Counts c = count_tokens(doc);
  EXPECT_EQ(c.at("#a"), 3);
  EXPECT_EQ(c.at("@b"), 1);
  EXPECT_EQ(c.at("@c"), 1);
  EXPECT_EQ(c.size(), 3u);
}

TEST(CountTokens, RespectsRange) {
  auto tweets = std::make_shared<const std::vector<std::string>>(
      std::vector<std::string>{"#a", "#b", "#c"});
  TweetDoc doc{tweets, 1, 2, 2, 1.0};
  const Counts c = count_tokens(doc);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.at("#b"), 1);
}

TEST(PaperTimingsTest, SequentialWctMatchesThePaperAtScaleOne) {
  PaperTimings t;
  t.scale = 1.0;
  // 6.4 + 5×(0.914 + 6×0.04 + 0.04) + 0.1 ≈ 12.47 — the paper's 12.5 s.
  EXPECT_NEAR(t.sequential_wct(), 12.5, 0.15);
}

TEST(PaperTimingsTest, ScaleIsLinear) {
  PaperTimings t;
  t.scale = 1.0;
  const double full = t.sequential_wct();
  t.scale = 0.1;
  EXPECT_NEAR(t.sequential_wct(), full * 0.1, 1e-9);
}

TEST(WordcountSkeletonTest, StructureMatchesListing1) {
  PaperTimings t;
  t.scale = 0.0;  // no sleeps
  const WordcountSkeleton ws = make_wordcount_skeleton(t);
  EXPECT_EQ(tree_size(*ws.skeleton.node()), 3u);  // map/map/seq
  const auto muscles = tree_muscles(*ws.skeleton.node());
  EXPECT_EQ(muscles.size(), 3u);  // fs and fm shared across levels
}

TEST(WordcountSkeletonTest, ComputesTheSameCountsAsSequentialReference) {
  PaperTimings t;
  t.scale = 0.0;
  const WordcountSkeleton ws = make_wordcount_skeleton(t);
  TweetCorpusConfig ccfg;
  ccfg.num_tweets = 500;
  auto tweets =
      std::make_shared<const std::vector<std::string>>(generate_tweets(ccfg));
  TweetDoc doc{tweets, 0, tweets->size(), 0, 1.0};

  ResizableThreadPool pool(2, 4);
  EventBus bus;
  Engine engine(pool, bus);
  const CountsPart out = ws.skeleton.input(doc, engine).get();
  EXPECT_EQ(out.counts, count_tokens(doc));
  EXPECT_EQ(out.level, 0);
}

TEST(WordcountSkeletonTest, SliceWeightsAreJitteredButBounded) {
  PaperTimings t;
  t.scale = 0.0;
  const WordcountSkeleton ws = make_wordcount_skeleton(t, /*jitter_seed=*/7);
  TweetCorpusConfig ccfg;
  ccfg.num_tweets = 600;
  auto tweets =
      std::make_shared<const std::vector<std::string>>(generate_tweets(ccfg));

  // Run the split muscle twice by hand to check weight determinism.
  TweetDoc doc{tweets, 0, tweets->size(), 0, 1.0};
  AnyVec outer1 = ws.fs->invoke(Any(doc));
  AnyVec outer2 = ws.fs->invoke(Any(doc));
  ASSERT_EQ(outer1.size(), 5u);
  for (std::size_t k = 0; k < outer1.size(); ++k) {
    const auto c1 = std::any_cast<TweetDoc>(outer1[k]);
    AnyVec inner = ws.fs->invoke(Any(c1));
    ASSERT_EQ(inner.size(), 6u);
    for (const Any& sub : inner) {
      const auto s = std::any_cast<TweetDoc>(sub);
      EXPECT_GE(s.weight, 0.6);
      EXPECT_LE(s.weight, 1.4);
      EXPECT_EQ(s.level, 2);
    }
    const auto c2 = std::any_cast<TweetDoc>(outer2[k]);
    EXPECT_EQ(c1.begin, c2.begin);
    EXPECT_EQ(c1.end, c2.end);
  }
}

TEST(PaperExampleTest, SkeletonSharesMusclesAcrossLevels) {
  const PaperExampleSkeleton s = make_paper_example_skeleton();
  EXPECT_EQ(tree_size(*s.outer), 3u);
  EXPECT_EQ(s.outer->muscles()[0]->id(), s.fs_id);
  EXPECT_EQ(s.inner->muscles()[0]->id(), s.fs_id);  // shared fs
  EXPECT_EQ(s.outer->muscles()[1]->id(), s.fm_id);
  EXPECT_EQ(s.inner->muscles()[1]->id(), s.fm_id);  // shared fm
}

TEST(PaperExampleTest, ReplayIsIdempotentPerTimePoint) {
  PaperExampleReplay r;
  r.replay_until(50.0);
  const std::size_t left = r.remaining();
  r.replay_until(50.0);  // same time again: nothing new
  EXPECT_EQ(r.remaining(), left);
  r.replay_until(40.0);  // going backwards is a no-op too
  EXPECT_EQ(r.remaining(), left);
}

TEST(PaperExampleTest, RhoDoesNotMatterWhenObservationsAreConstant) {
  for (const double rho : {0.1, 0.5, 1.0}) {
    PaperExampleReplay r(rho);
    r.replay_until(70.0);
    EXPECT_DOUBLE_EQ(*r.registry().t(r.skel().fs_id), 10.0) << rho;
    EXPECT_DOUBLE_EQ(*r.registry().t(r.skel().fe_id), 15.0) << rho;
  }
}

}  // namespace
}  // namespace askel
