// Tests for est/: the paper's history-based estimator and the registry.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include "est/ewma.hpp"
#include "est/quality.hpp"
#include "est/registry.hpp"

namespace askel {
namespace {

TEST(Ewma, FirstObservationBecomesEstimate) {
  Ewma e(0.5);
  EXPECT_FALSE(e.has_value());
  e.observe(10.0);
  EXPECT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, PaperFormula) {
  // newEst = ρ·lastActual + (1−ρ)·prevEst
  Ewma e(0.5);
  e.observe(10.0);
  e.observe(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
  e.observe(5.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, RhoOneTracksOnlyLastMeasure) {
  // "if ρ is set to 1, then only the last measure will be taken into account"
  Ewma e(1.0);
  e.observe(10.0);
  e.observe(42.0);
  EXPECT_DOUBLE_EQ(e.value(), 42.0);
}

TEST(Ewma, RhoZeroKeepsFirstValue) {
  // "if ρ is set to 0, then only the first value will be taken into account"
  Ewma e(0.0);
  e.observe(10.0);
  e.observe(99.0);
  e.observe(-5.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, InitSeedsWithoutCountingObservation) {
  Ewma e(0.5);
  e.init(8.0);
  EXPECT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e.value(), 8.0);
  EXPECT_EQ(e.observations(), 0);
  e.observe(4.0);
  EXPECT_DOUBLE_EQ(e.value(), 6.0);  // blends with the initialization
  EXPECT_EQ(e.observations(), 1);
}

TEST(Ewma, RejectsRhoOutsideUnitInterval) {
  EXPECT_THROW(Ewma(-0.1), std::invalid_argument);
  EXPECT_THROW(Ewma(1.1), std::invalid_argument);
}

TEST(Ewma, ValueStaysWithinObservedRange) {
  Ewma e(0.3);
  double lo = 1e9, hi = -1e9;
  const double xs[] = {3.0, 8.0, 1.0, 6.5, 2.2};
  for (double x : xs) {
    e.observe(x);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    EXPECT_GE(e.value(), lo);
    EXPECT_LE(e.value(), hi);
  }
}

TEST(MuscleStats, SeparatesDurationAndCardinality) {
  MuscleStats s(0.5);
  EXPECT_FALSE(s.t().has_value());
  EXPECT_FALSE(s.cardinality().has_value());
  s.observe_duration(2.0);
  s.observe_cardinality(3.0);
  EXPECT_DOUBLE_EQ(*s.t(), 2.0);
  EXPECT_DOUBLE_EQ(*s.cardinality(), 3.0);
}

TEST(Registry, ObserveAndRead) {
  EstimateRegistry reg(0.5);
  reg.observe_duration(7, 10.0);
  reg.observe_duration(7, 20.0);
  EXPECT_DOUBLE_EQ(*reg.t(7), 15.0);
  EXPECT_FALSE(reg.t(8).has_value());
  EXPECT_FALSE(reg.cardinality(7).has_value());
}

TEST(Registry, SnapshotIsAConsistentCopy) {
  EstimateRegistry reg(1.0);
  reg.observe_duration(1, 5.0);
  reg.observe_cardinality(1, 3.0);
  const Estimates snap = reg.snapshot();
  reg.observe_duration(1, 100.0);  // must not affect the snapshot
  EXPECT_DOUBLE_EQ(*snap.t(1), 5.0);
  EXPECT_DOUBLE_EQ(*snap.cardinality(1), 3.0);
  EXPECT_DOUBLE_EQ(snap.t_or(1, -1.0), 5.0);
  EXPECT_DOUBLE_EQ(snap.t_or(999, -1.0), -1.0);
  EXPECT_DOUBLE_EQ(snap.cardinality_or(999, 7.0), 7.0);
}

TEST(Registry, InitSeedsEstimates) {
  EstimateRegistry reg(0.5);
  reg.init_duration(3, 6.0);
  reg.init_cardinality(3, 4.0);
  EXPECT_DOUBLE_EQ(*reg.t(3), 6.0);
  EXPECT_DOUBLE_EQ(*reg.cardinality(3), 4.0);
}

TEST(Registry, InitFromPreviousRunRoundTrips) {
  // Paper scenario 2: "t(m) and |m| functions are initialized with their
  // corresponding final value of a previous execution".
  EstimateRegistry first(0.5);
  first.observe_duration(1, 6.4);
  first.observe_duration(2, 0.04);
  first.observe_cardinality(1, 5.0);
  const Estimates exported = first.snapshot();

  EstimateRegistry second(0.5);
  second.init_from(exported);
  EXPECT_DOUBLE_EQ(*second.t(1), 6.4);
  EXPECT_DOUBLE_EQ(*second.t(2), 0.04);
  EXPECT_DOUBLE_EQ(*second.cardinality(1), 5.0);
  EXPECT_FALSE(second.cardinality(2).has_value());
}

TEST(Registry, ClearForgetsEverything) {
  EstimateRegistry reg;
  reg.observe_duration(1, 1.0);
  reg.clear();
  EXPECT_FALSE(reg.t(1).has_value());
  EXPECT_EQ(reg.snapshot().size(), 0u);
}

TEST(Registry, ConcurrentObservationsDontCrashOrLose) {
  EstimateRegistry reg(1.0);  // rho=1: final value = last observation
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&reg, t] {
      for (int k = 0; k < 500; ++k) reg.observe_duration(t, 1.0 * k);
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < 4; ++t) EXPECT_DOUBLE_EQ(*reg.t(t), 499.0);
}

TEST(Registry, RhoIsAppliedPerMuscle) {
  EstimateRegistry reg(0.25);
  reg.observe_duration(5, 0.0);
  reg.observe_duration(5, 8.0);
  EXPECT_DOUBLE_EQ(*reg.t(5), 2.0);  // 0.25*8 + 0.75*0
}

// ---------------------------------------------------- per-depth estimation --

TEST(RegistryPerDepth, AggregateScopeIgnoresDepthOnLookup) {
  EstimateRegistry reg(1.0, EstimationScope::kAggregate);
  reg.observe_duration(1, /*depth=*/0, 6.4);
  reg.observe_duration(1, /*depth=*/1, 0.9);
  // Aggregate scope: depth-qualified lookups return the conflated EWMA.
  EXPECT_DOUBLE_EQ(*reg.t(1, 0), 0.9);
  EXPECT_DOUBLE_EQ(*reg.t(1, 1), 0.9);
}

TEST(RegistryPerDepth, PerDepthScopeSeparatesLevels) {
  // The §5 conflation, resolved: the SHARED fs observed at depth 0 (6.4 s
  // file read) and depth 1 (0.9 s chunk splits) keeps two estimates.
  EstimateRegistry reg(1.0, EstimationScope::kPerDepth);
  reg.observe_duration(1, 0, 6.4);
  reg.observe_duration(1, 1, 0.9);
  EXPECT_DOUBLE_EQ(*reg.t(1, 0), 6.4);
  EXPECT_DOUBLE_EQ(*reg.t(1, 1), 0.9);
  // Unseen depth falls back to the aggregate layer.
  EXPECT_DOUBLE_EQ(*reg.t(1, 5), *reg.t(1));
}

TEST(RegistryPerDepth, CardinalitySeparatesToo) {
  EstimateRegistry reg(1.0, EstimationScope::kPerDepth);
  reg.observe_cardinality(2, 0, 5.0);
  reg.observe_cardinality(2, 1, 6.0);
  EXPECT_DOUBLE_EQ(*reg.cardinality(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(*reg.cardinality(2, 1), 6.0);
}

TEST(RegistryPerDepth, SnapshotCarriesBothLayersAndScope) {
  EstimateRegistry reg(1.0, EstimationScope::kPerDepth);
  reg.observe_duration(3, 2, 1.5);
  const Estimates snap = reg.snapshot();
  EXPECT_EQ(snap.scope(), EstimationScope::kPerDepth);
  EXPECT_DOUBLE_EQ(*snap.t(3, 2), 1.5);
  EXPECT_DOUBLE_EQ(*snap.t(3), 1.5);  // aggregate layer updated too
}

TEST(RegistryPerDepth, InitFromRestoresBothLayers) {
  EstimateRegistry a(1.0, EstimationScope::kPerDepth);
  a.observe_duration(4, 0, 10.0);
  a.observe_duration(4, 1, 2.0);
  EstimateRegistry b(1.0, EstimationScope::kPerDepth);
  b.init_from(a.snapshot());
  EXPECT_DOUBLE_EQ(*b.t(4, 0), 10.0);
  EXPECT_DOUBLE_EQ(*b.t(4, 1), 2.0);
}

// ------------------------------------------------- versioned snapshotting --

TEST(RegistryVersion, WritesBumpReadsDoNot) {
  EstimateRegistry reg(0.5);
  const std::uint64_t v0 = reg.version();
  reg.observe_duration(1, 2.0);
  EXPECT_GT(reg.version(), v0);
  const std::uint64_t v1 = reg.version();
  (void)reg.t(1);
  (void)reg.snapshot();
  (void)reg.snapshot();
  EXPECT_EQ(reg.version(), v1);  // lookups and snapshots are pure reads
  reg.clear();
  EXPECT_GT(reg.version(), v1);
}

TEST(RegistryVersion, CleanSnapshotsShareStorage) {
  EstimateRegistry reg(0.5);
  for (int m = 0; m < 100; ++m) reg.observe_duration(m, 1.0);
  const Estimates a = reg.snapshot();
  const Estimates b = reg.snapshot();  // clean: cached, O(1)
  // COW: both snapshots expose the same underlying fragment objects.
  for (std::size_t i = 0; i < Estimates::kFragments; ++i) {
    EXPECT_EQ(a.fragment(i), b.fragment(i)) << "fragment " << i;
  }
  // A write to muscle 0 dirties exactly one shard; the next snapshot
  // rebuilds that fragment and splices every other one unchanged.
  reg.observe_duration(0, 5.0);
  const Estimates c = reg.snapshot();
  const std::size_t dirty = Estimates::fragment_of(0);
  for (std::size_t i = 0; i < Estimates::kFragments; ++i) {
    if (i == dirty) {
      EXPECT_NE(a.fragment(i), c.fragment(i)) << "dirty fragment not rebuilt";
    } else {
      EXPECT_EQ(a.fragment(i), c.fragment(i)) << "clean fragment " << i
                                              << " was copied, not spliced";
    }
  }
  EXPECT_DOUBLE_EQ(*a.t(0), 1.0);  // old snapshots are immune to the write
  EXPECT_DOUBLE_EQ(*c.t(0), 3.0);  // EWMA(0.5): 0.5*1.0 + 0.5*5.0
}

TEST(RegistryVersion, IncrementalSnapshotMatchesFullRebuildOnRandomDirtySets) {
  // Bit-identicality of the incremental path: after every randomized batch
  // of writes, the incrementally maintained registry's snapshot must carry
  // exactly the values a from-scratch registry fed the same observations
  // produces. Randomized dirty-shard patterns (subset of shards per round,
  // both layers, all estimator-visible fields).
  std::mt19937_64 rng(20260808u);
  EstimateRegistry inc(0.5, EstimationScope::kPerDepth);
  EstimateRegistry full(0.5, EstimationScope::kPerDepth);
  for (int round = 0; round < 40; ++round) {
    const int writes = 1 + static_cast<int>(rng() % 8);
    for (int w = 0; w < writes; ++w) {
      const int muscle = static_cast<int>(rng() % 128);
      const int depth = static_cast<int>(rng() % 3);
      const double val = 0.25 * static_cast<double>(1 + rng() % 64);
      if (rng() % 2 == 0) {
        inc.observe_duration(muscle, depth, val);
        full.observe_duration(muscle, depth, val);
      } else {
        inc.observe_cardinality(muscle, depth, val);
        full.observe_cardinality(muscle, depth, val);
      }
    }
    // `inc` snapshots every round (so most shards are clean and get
    // spliced); `full` snapshots once, rebuilding everything from scratch.
    const Estimates a = inc.snapshot();
    const Estimates b = full.snapshot();
    ASSERT_EQ(a.size(), b.size()) << "round " << round;
    std::size_t visited = 0;
    a.for_each([&](std::int64_t key, const Estimates::Entry& ea) {
      ++visited;
      const int id = estimate_key_muscle(key);
      const int depth = estimate_key_depth(key);
      const Estimates::Entry eb{b.t(id, depth), b.cardinality(id, depth)};
      if (ea.t) {
        ASSERT_TRUE(eb.t) << "round " << round << " key " << key;
        ASSERT_EQ(*ea.t, *eb.t) << "round " << round << " key " << key;
      }
      if (ea.card) {
        ASSERT_TRUE(eb.card) << "round " << round << " key " << key;
        ASSERT_EQ(*ea.card, *eb.card) << "round " << round << " key " << key;
      }
    });
    ASSERT_EQ(visited, a.size());
  }
}

TEST(RegistryVersion, MutatingASnapshotCopyDetachesIt) {
  EstimateRegistry reg(1.0);
  reg.observe_duration(7, 3.0);
  Estimates snap = reg.snapshot();
  snap.set(7, Estimates::Entry{9.0, std::nullopt});  // COW: detaches
  EXPECT_DOUBLE_EQ(*snap.t(7), 9.0);
  EXPECT_DOUBLE_EQ(*reg.snapshot().t(7), 3.0);  // registry cache untouched
}

// --------------------------------------------------- estimator family --

TEST(RegistryEstimator, DefaultConfigIsThePaperEwma) {
  EstimateRegistry reg(0.25);
  EXPECT_EQ(reg.estimator_config().kind, EstimatorKind::kEwma);
  EXPECT_DOUBLE_EQ(reg.estimator_config().rho, 0.25);
  EXPECT_DOUBLE_EQ(reg.rho(), 0.25);
}

TEST(RegistryEstimator, WindowMedianRegistryIgnoresASpike) {
  EstimateRegistry reg(
      EstimatorConfig{.kind = EstimatorKind::kWindowMedian, .window = 5});
  for (const double v : {1.0, 1.1, 0.9, 50.0, 1.0}) reg.observe_duration(3, v);
  EXPECT_DOUBLE_EQ(*reg.t(3), 1.0);  // median shrugs the 50.0 outlier off
  // The paper's EWMA on the same stream chases the spike.
  EstimateRegistry ewma(0.5);
  for (const double v : {1.0, 1.1, 0.9, 50.0, 1.0}) ewma.observe_duration(3, v);
  EXPECT_GT(*ewma.t(3), 5.0);
}

TEST(RegistryEstimator, WindowMeanForgetsBeyondTheWindow) {
  EstimateRegistry reg(
      EstimatorConfig{.kind = EstimatorKind::kWindowMean, .window = 2});
  reg.observe_duration(1, 100.0);
  reg.observe_duration(1, 2.0);
  reg.observe_duration(1, 4.0);  // the 100.0 has left the window
  EXPECT_DOUBLE_EQ(*reg.t(1), 3.0);
}

TEST(RegistryEstimator, P2QuantileRegistryTracksTheUpperTail) {
  EstimateRegistry reg(
      EstimatorConfig{.kind = EstimatorKind::kP2Quantile, .quantile = 0.9});
  for (int k = 1; k <= 100; ++k) reg.observe_duration(9, static_cast<double>(k));
  // The streaming 0.9-quantile of 1..100 lands near 90 — far above the mean.
  EXPECT_GT(*reg.t(9), 75.0);
  EXPECT_LE(*reg.t(9), 100.0);
}

/// Exact nearest-rank quantile of a copy of `v`.
double exact_quantile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(v.size()))) - 1;
  return v[std::min(idx, v.size() - 1)];
}

TEST(P2Quantile, TracksExactP99OnHeavyTailedStream) {
  // Deterministic bounded-Pareto latencies (shape 1.5, the service family's
  // default): the regime where a p99 estimate earns its keep. P² at q=0.99
  // converged within ~12% of the exact sorted quantile across seeds when
  // this bound was calibrated; 25% leaves margin without letting the
  // estimate drift to a different order of magnitude.
  for (const std::uint64_t seed : {99ull, 7ull, 123ull}) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> u01(0.0, 1.0);
    std::vector<double> lat;
    for (int k = 0; k < 4000; ++k) {
      const double u = std::max(1e-12, 1.0 - u01(rng));
      lat.push_back(std::min(1.0, 0.01 * std::pow(u, -1.0 / 1.5)));
    }
    const auto est = make_estimator(
        EstimatorConfig{.kind = EstimatorKind::kP2Quantile, .quantile = 0.99});
    for (const double v : lat) est->observe(v);
    const double exact = exact_quantile(lat, 0.99);
    EXPECT_NEAR(est->value(), exact, 0.25 * exact) << "seed " << seed;
  }
}

TEST(P2Quantile, TracksExactP99OnBurstyStream) {
  // The PR 4 seeded regime-shift stream: piecewise-constant levels + spikes.
  // P² lands within ~3% here; 15% is the pinned bound.
  const std::vector<double> stream = bursty_stream(99, 4000);
  const auto est = make_estimator(
      EstimatorConfig{.kind = EstimatorKind::kP2Quantile, .quantile = 0.99});
  for (const double v : stream) est->observe(v);
  const double exact = exact_quantile(stream, 0.99);
  EXPECT_NEAR(est->value(), exact, 0.15 * exact);
}

TEST(P2Quantile, TailDominatesMedianThroughout) {
  // Two P² estimators over one heavy-tailed stream: after the 5-sample
  // bootstrap settles, the q=0.99 estimate must never fall under the median
  // (the SLO controller's increase/decrease bands assume this ordering).
  const auto tail = make_estimator(
      EstimatorConfig{.kind = EstimatorKind::kP2Quantile, .quantile = 0.99});
  const auto median = make_estimator(
      EstimatorConfig{.kind = EstimatorKind::kP2Quantile, .quantile = 0.5});
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  for (int k = 1; k <= 2000; ++k) {
    const double u = std::max(1e-12, 1.0 - u01(rng));
    const double v = std::min(1.0, 0.01 * std::pow(u, -1.0 / 1.5));
    tail->observe(v);
    median->observe(v);
    if (k >= 20) {
      EXPECT_GE(tail->value(), median->value()) << "at observation " << k;
    }
  }
}

TEST(RegistryEstimator, ConfigAppliesToBothLayersAndCardinality) {
  EstimateRegistry reg(
      EstimatorConfig{.kind = EstimatorKind::kWindowMedian, .window = 3},
      EstimationScope::kPerDepth);
  for (const double v : {5.0, 5.0, 40.0}) reg.observe_cardinality(2, 1, v);
  EXPECT_DOUBLE_EQ(*reg.cardinality(2, 1), 5.0);  // per-depth layer
  EXPECT_DOUBLE_EQ(*reg.cardinality(2), 5.0);     // aggregate layer
}

TEST(RegistryEstimator, VersionedSnapshotSemanticsAreEstimatorAgnostic) {
  // The PR 1 contract — clean snapshots are cached and COW-shared, writes
  // invalidate — must hold for every family member, not just the EWMA.
  EstimateRegistry reg(
      EstimatorConfig{.kind = EstimatorKind::kP2Quantile, .quantile = 0.5});
  for (int m = 0; m < 10; ++m) reg.observe_duration(m, 1.0 + m);
  const Estimates a = reg.snapshot();
  const Estimates b = reg.snapshot();
  for (std::size_t i = 0; i < Estimates::kFragments; ++i) {
    EXPECT_EQ(a.fragment(i), b.fragment(i));  // clean: cached, shared storage
  }
  const std::uint64_t v = reg.version();
  reg.observe_duration(0, 2.0);
  EXPECT_GT(reg.version(), v);
  const Estimates c = reg.snapshot();
  // The write invalidated exactly the written muscle's fragment.
  EXPECT_NE(a.fragment(Estimates::fragment_of(0)),
            c.fragment(Estimates::fragment_of(0)));
  EXPECT_DOUBLE_EQ(*a.t(0), 1.0);         // old snapshot immune to the write
}

TEST(RegistryEstimator, InitFromTransfersAcrossDifferentEstimators) {
  // Scenario 2 seeding carries VALUES, not estimator state: a registry of
  // one kind can initialize a registry of another.
  EstimateRegistry first(0.5);
  first.observe_duration(1, 6.4);
  EstimateRegistry second(
      EstimatorConfig{.kind = EstimatorKind::kWindowMean, .window = 4});
  second.init_from(first.snapshot());
  EXPECT_DOUBLE_EQ(*second.t(1), 6.4);
  second.observe_duration(1, 2.4);  // seed + one observation, mean of both
  EXPECT_DOUBLE_EQ(*second.t(1), 4.4);
}

TEST(RegistryEstimator, BadConfigThrowsAtConstruction) {
  EXPECT_THROW(EstimateRegistry(EstimatorConfig{.kind = EstimatorKind::kEwma,
                                                .rho = -0.1}),
               std::invalid_argument);
  EXPECT_THROW(
      EstimateRegistry(EstimatorConfig{.kind = EstimatorKind::kWindowMean,
                                       .window = 0}),
      std::invalid_argument);
}

TEST(RegistryPerDepth, KeyRoundTrips) {
  for (const int id : {0, 1, 17, 100000}) {
    for (const int depth : {kAnyDepth, 0, 1, 63}) {
      const std::int64_t key = estimate_key(id, depth);
      EXPECT_EQ(estimate_key_muscle(key), id);
      EXPECT_EQ(estimate_key_depth(key), depth);
    }
  }
}

}  // namespace
}  // namespace askel
