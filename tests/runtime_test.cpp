// Unit tests for runtime/: LP gauge and the resizable thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "runtime/worker_backend.hpp"

namespace askel {
namespace {

using namespace std::chrono_literals;

TEST(LpGauge, TracksBusyAndPeak) {
  ManualClock clock;
  LpGauge g(&clock);
  EXPECT_EQ(g.busy(), 0);
  g.task_started();
  g.task_started();
  EXPECT_EQ(g.busy(), 2);
  EXPECT_EQ(g.peak(), 2);
  g.task_finished();
  EXPECT_EQ(g.busy(), 1);
  EXPECT_EQ(g.peak(), 2);
}

TEST(LpGauge, RecordsSeries) {
  ManualClock clock;
  LpGauge g(&clock);
  g.task_started();
  clock.advance(1.0);
  g.task_finished();
  const auto s = g.series().samples();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], (Sample{0.0, 1.0}));
  EXPECT_EQ(s[1], (Sample{1.0, 0.0}));
}

TEST(LpGauge, ResetClears) {
  LpGauge g;
  g.task_started();
  g.task_finished();
  g.reset();
  EXPECT_EQ(g.busy(), 0);
  EXPECT_EQ(g.peak(), 0);
  EXPECT_EQ(g.series().size(), 0u);
}

TEST(BusyScope, RaiiPairsStartFinish) {
  LpGauge g;
  {
    BusyScope b(g);
    EXPECT_EQ(g.busy(), 1);
  }
  EXPECT_EQ(g.busy(), 0);
}

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ResizableThreadPool pool(2, 4);
  std::atomic<int> done{0};
  for (int k = 0; k < 100; ++k) pool.submit([&] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, ClampsInitialLp) {
  ResizableThreadPool pool(99, 4);
  EXPECT_EQ(pool.target_lp(), 4);
  ResizableThreadPool pool2(0, 4);
  EXPECT_EQ(pool2.target_lp(), 1);
}

TEST(ThreadPool, SetTargetLpClampsToBounds) {
  ResizableThreadPool pool(1, 8);
  EXPECT_EQ(pool.set_target_lp(100), 8);
  EXPECT_EQ(pool.set_target_lp(-3), 1);
}

TEST(ThreadPool, TasksFromTasksComplete) {
  ResizableThreadPool pool(1, 2);
  std::atomic<int> done{0};
  pool.submit([&] {
    for (int k = 0; k < 10; ++k) pool.submit([&] { done.fetch_add(1); });
  });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPool, ConcurrencyIsBoundedByTargetLp) {
  ResizableThreadPool pool(2, 8);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int k = 0; k < 16; ++k) {
    pool.submit([&] {
      const int c = concurrent.fetch_add(1) + 1;
      int p = peak.load();
      while (c > p && !peak.compare_exchange_weak(p, c)) {
      }
      std::this_thread::sleep_for(10ms);
      concurrent.fetch_sub(1);
    });
  }
  pool.wait_idle();
  EXPECT_LE(peak.load(), 2);
  EXPECT_GE(peak.load(), 2);  // enough work to saturate both workers
}

TEST(ThreadPool, GrowingLpIncreasesConcurrency) {
  ResizableThreadPool pool(1, 8);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int k = 0; k < 24; ++k) {
    pool.submit([&] {
      const int c = concurrent.fetch_add(1) + 1;
      int p = peak.load();
      while (c > p && !peak.compare_exchange_weak(p, c)) {
      }
      std::this_thread::sleep_for(10ms);
      concurrent.fetch_sub(1);
    });
  }
  std::this_thread::sleep_for(20ms);
  pool.set_target_lp(6);
  pool.wait_idle();
  EXPECT_GT(peak.load(), 2);
  EXPECT_LE(peak.load(), 6);
}

TEST(ThreadPool, ShrinkTakesEffectAtTaskBoundary) {
  ResizableThreadPool pool(4, 4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak_after_shrink{0};
  std::atomic<bool> shrunk{false};
  for (int k = 0; k < 40; ++k) {
    pool.submit([&] {
      const int c = concurrent.fetch_add(1) + 1;
      if (shrunk.load()) {
        int p = peak_after_shrink.load();
        while (c > p && !peak_after_shrink.compare_exchange_weak(p, c)) {
        }
      }
      std::this_thread::sleep_for(5ms);
      concurrent.fetch_sub(1);
    });
  }
  std::this_thread::sleep_for(12ms);
  pool.set_target_lp(1);
  shrunk.store(true);
  pool.wait_idle();
  // Tasks that started before the shrink may still be draining right at the
  // flag flip; after that instant at most 1 + (lp_before - 1) finishing
  // stragglers can overlap. The strict bound soon after is 1; allow the
  // stragglers.
  EXPECT_LE(peak_after_shrink.load(), 4);
  EXPECT_EQ(pool.target_lp(), 1);
}

TEST(ThreadPool, SpawnsWorkersLazily) {
  ResizableThreadPool pool(2, 16);
  EXPECT_EQ(pool.spawned_workers(), 2);
  pool.set_target_lp(5);
  EXPECT_EQ(pool.spawned_workers(), 5);
  pool.set_target_lp(2);
  // Parked, not destroyed.
  EXPECT_EQ(pool.spawned_workers(), 5);
  pool.set_target_lp(4);
  EXPECT_EQ(pool.spawned_workers(), 5);
}

TEST(ThreadPool, LpHistoryRecordsChanges) {
  ResizableThreadPool pool(1, 8);
  pool.set_target_lp(3);
  pool.set_target_lp(3);  // no-op, not recorded
  pool.set_target_lp(2);
  const auto h = pool.lp_history().samples();
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h[0].value, 1.0);
  EXPECT_EQ(h[1].value, 3.0);
  EXPECT_EQ(h[2].value, 2.0);
}

TEST(ThreadPool, GaugeSeesBusyWorkers) {
  ResizableThreadPool pool(3, 3);
  std::atomic<int> go{0};
  for (int k = 0; k < 3; ++k) {
    pool.submit([&] {
      go.fetch_add(1);
      while (go.load() < 3) std::this_thread::yield();
      std::this_thread::sleep_for(10ms);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(pool.gauge().peak(), 3);
  EXPECT_EQ(pool.gauge().busy(), 0);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ResizableThreadPool pool(1, 1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ProvisionDelayPostponesEffectiveGrowth) {
  ResizableThreadPool pool(1, 8);
  pool.set_provision_delay(0.05);
  pool.set_target_lp(4);
  // The request is visible immediately; the workers join later.
  EXPECT_EQ(pool.target_lp(), 4);
  EXPECT_EQ(pool.effective_lp(), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(pool.effective_lp(), 4);
}

TEST(ThreadPool, ProvisionDelayDoesNotSlowShrink) {
  ResizableThreadPool pool(4, 8);
  pool.set_provision_delay(10.0);  // would take "forever" for growth
  pool.set_target_lp(2);           // shrink is local parking: immediate
  EXPECT_EQ(pool.target_lp(), 2);
  EXPECT_EQ(pool.effective_lp(), 2);
}

TEST(ThreadPool, PendingProvisionIsCancelledOnDestruction) {
  // Must not hang for the 10 s timer.
  ResizableThreadPool pool(1, 8);
  pool.set_provision_delay(10.0);
  pool.set_target_lp(8);
  EXPECT_EQ(pool.effective_lp(), 1);
  // Destructor runs here and must cancel the timer promptly.
}

TEST(ThreadPool, StaleProvisionNeverExceedsLatestRequest) {
  ResizableThreadPool pool(1, 8);
  pool.set_provision_delay(0.05);
  pool.set_target_lp(6);  // join scheduled for +50ms
  pool.set_target_lp(2);  // immediate shrink; the pending 6 is now stale
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(pool.target_lp(), 2);
  EXPECT_EQ(pool.effective_lp(), 2);  // the stale 6 must have been discarded
}

TEST(ThreadPool, WithoutDelayTargetAndEffectiveCoincide) {
  ResizableThreadPool pool(2, 8);
  pool.set_target_lp(5);
  EXPECT_EQ(pool.target_lp(), 5);
  EXPECT_EQ(pool.effective_lp(), 5);
}

TEST(ThreadPool, StealsMoveWorkAcrossWorkers) {
  // One worker fans out children onto its own deque then blocks inside its
  // task; the other runnable worker must steal the children.
  ResizableThreadPool pool(2, 2);
  std::atomic<int> done{0};
  std::atomic<bool> release{false};
  pool.submit([&] {
    for (int k = 0; k < 8; ++k) {
      pool.submit([&done] { done.fetch_add(1); });
    }
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (done.load() < 8 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(done.load(), 8);  // completed while the fanning worker is pinned
  EXPECT_GE(pool.steals(), 1u);
  release.store(true);
  pool.wait_idle();
}

TEST(ThreadPool, RepeatedDelayedGrowthDoesNotAccumulateState) {
  // Regression guard for the provision-timer leak: every delayed grow used
  // to append a jthread that was never reaped. After many grow/shrink
  // cycles the pool must still resize correctly and shut down promptly.
  ResizableThreadPool pool(1, 8);
  pool.set_provision_delay(0.01);
  for (int k = 0; k < 30; ++k) {
    pool.set_target_lp(4);
    pool.set_target_lp(1);
  }
  pool.set_target_lp(6);
  std::this_thread::sleep_for(60ms);
  EXPECT_EQ(pool.effective_lp(), 6);
  // Destructor must cancel any stragglers without hanging.
}

TEST(ThreadPool, QueuedCountsBacklog) {
  ResizableThreadPool pool(1, 1);
  std::atomic<bool> release{false};
  pool.submit([&] {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  std::this_thread::sleep_for(5ms);
  pool.submit([] {});
  pool.submit([] {});
  EXPECT_EQ(pool.queued(), 2u);
  release.store(true);
  pool.wait_idle();
  EXPECT_EQ(pool.queued(), 0u);
}

// ------------------------------------------------- tenant-aware dispatch --

TEST(ThreadPool, TenantSlotCollisionKeepsExactAccounting) {
  // Regression: ids 1, 65 and 129 hash to the same accounting slot (64
  // direct slots). The old fixed-array accounting silently merged their
  // submit counts — and would have merged the new dispatch weights too.
  // The CAS-claimed slot + exact side map must keep every id separate.
  ResizableThreadPool pool(2, 4);
  const int a = 1, b = 1 + 64, c = 1 + 128;
  std::atomic<int> done{0};
  for (int k = 0; k < 3; ++k) pool.submit([&] { done.fetch_add(1); }, a);
  for (int k = 0; k < 2; ++k) pool.submit([&] { done.fetch_add(1); }, b);
  pool.submit([&] { done.fetch_add(1); }, c);
  pool.wait_idle();
  EXPECT_EQ(done.load(), 6);
  EXPECT_EQ(pool.tenant_submitted(a), 3u);
  EXPECT_EQ(pool.tenant_submitted(b), 2u);
  EXPECT_EQ(pool.tenant_submitted(c), 1u);
  // Grants stay per-id too: installing one tenant's grant must not be
  // visible through a colliding id.
  pool.set_tenant_grant(a, 3);
  pool.set_tenant_grant(b, 1);
  EXPECT_EQ(pool.tenant_grant(a), 3);
  EXPECT_EQ(pool.tenant_grant(b), 1);
  EXPECT_EQ(pool.tenant_grant(c), 0);
}

TEST(ThreadPool, WaitIdleDrainsTenantQueues) {
  // wait_idle must cover tasks parked in the per-tenant run queues, mixed
  // with untagged deque/injection tasks — including colliding ids, which
  // exercise the exact side map on the dispatch path.
  ResizableThreadPool pool(2, 4);
  std::atomic<int> done{0};
  constexpr int kPerSource = 100;
  std::vector<std::thread> submitters;
  for (const int tenant : {0, 1, 2, 1 + 64}) {
    submitters.emplace_back([&, tenant] {
      for (int k = 0; k < kPerSource; ++k) {
        pool.submit(
            [&] {
              done.fetch_add(1);
              // Nested mixed spawns: a tagged parent fanning out an
              // untagged child and vice versa, both covered by the same
              // wait_idle.
              if (done.load() % 10 == 0) {
                pool.submit([&] { done.fetch_add(1); });
              }
            },
            tenant);
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  pool.wait_idle();
  const int after = done.load();
  EXPECT_GE(after, 4 * kPerSource);
  EXPECT_EQ(pool.queued(), 0u);
  for (const int tenant : {1, 2, 1 + 64}) {
    EXPECT_EQ(pool.tenant_queued(tenant), 0);
    EXPECT_EQ(pool.tenant_running(tenant), 0);
    EXPECT_EQ(pool.tenant_submitted(tenant), static_cast<std::uint64_t>(kPerSource));
  }
  // No stragglers: a second wait_idle returns immediately with nothing new.
  pool.wait_idle();
  EXPECT_EQ(done.load(), after);
}

TEST(ThreadPool, FifoDispatchModeBypassesTenantQueues) {
  // kFifo is the A/B baseline: tagged submits route exactly like untagged
  // ones (accounting only), so the tenant queues stay empty.
  ResizableThreadPool pool(1, 1);
  pool.set_tenant_dispatch(TenantDispatch::kFifo);
  EXPECT_EQ(pool.tenant_dispatch(), TenantDispatch::kFifo);
  std::atomic<bool> release{false};
  std::atomic<int> done{0};
  pool.submit([&] {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  std::this_thread::sleep_for(5ms);
  pool.submit([&] { done.fetch_add(1); }, /*tenant=*/7);
  pool.submit([&] { done.fetch_add(1); }, /*tenant=*/7);
  EXPECT_EQ(pool.queued(), 2u);
  EXPECT_EQ(pool.tenant_queued(7), 0);  // backlog sits in the legacy queues
  EXPECT_EQ(pool.tenant_submitted(7), 2u);
  release.store(true);
  pool.wait_idle();
  EXPECT_EQ(done.load(), 2);
}

TEST(ThreadPool, RetireTenantBoundsTheOverflowSideMap) {
  // The ROADMAP-flagged leak: before retirement, every distinct id that ever
  // collided on an accounting slot stayed in the exact side map forever.
  // Churn register/unregister-style usage and assert the map stays bounded.
  ResizableThreadPool pool(2, 2);
  std::atomic<int> done{0};
  // Claim slot 0 with id 1; every later id k*64+1 hashes to the same slot
  // and must take the side-map path.
  pool.submit([&] { done.fetch_add(1); }, /*tenant=*/1);
  pool.wait_idle();
  for (int k = 1; k <= 200; ++k) {
    const int id = k * 64 + 1;
    pool.set_tenant_grant(id, 1);
    pool.submit([&] { done.fetch_add(1); }, id);
    pool.submit([&] { done.fetch_add(1); }, id);
    pool.wait_idle();
    EXPECT_EQ(pool.tenant_submitted(id), 2u);
    EXPECT_TRUE(pool.retire_tenant(id)) << "id=" << id;
    // Retired: the id no longer resolves to any state.
    EXPECT_EQ(pool.tenant_submitted(id), 0u);
    EXPECT_EQ(pool.tenant_grant(id), 0);
    EXPECT_LE(pool.tenant_overflow_size(), 1u);  // bounded, not O(ids ever)
  }
  EXPECT_EQ(pool.tenant_overflow_size(), 0u);
  EXPECT_EQ(done.load(), 401);
  // The direct slot can be retired too, making it claimable by the next id.
  EXPECT_TRUE(pool.retire_tenant(1));
  pool.submit([&] { done.fetch_add(1); }, /*tenant=*/65);
  pool.wait_idle();
  EXPECT_EQ(pool.tenant_submitted(65), 1u);   // 65 claimed the freed slot...
  EXPECT_EQ(pool.tenant_overflow_size(), 0u); // ...instead of overflowing
}

TEST(ThreadPool, RetiringASlotDoesNotSplitACollidingOverflowTenant) {
  // Tenant 65 lives in the side map because tenant 1 holds its slot. When
  // tenant 1 retires and frees the slot, 65 must KEEP using its side-map
  // state — claiming the freed slot would fork its grant and counts and
  // orphan the side-map entry forever.
  ResizableThreadPool pool(1, 1);
  std::atomic<int> done{0};
  pool.submit([&] { done.fetch_add(1); }, /*tenant=*/1);   // claims slot 0
  pool.submit([&] { done.fetch_add(1); }, /*tenant=*/65);  // collides: side map
  pool.wait_idle();
  pool.set_tenant_grant(65, 3);
  EXPECT_EQ(pool.tenant_overflow_size(), 1u);
  EXPECT_TRUE(pool.retire_tenant(1));  // frees slot 0
  pool.submit([&] { done.fetch_add(1); }, /*tenant=*/65);
  pool.wait_idle();
  EXPECT_EQ(pool.tenant_grant(65), 3);       // grant survived intact
  EXPECT_EQ(pool.tenant_submitted(65), 2u);  // counts did not fork
  EXPECT_TRUE(pool.retire_tenant(65));
  EXPECT_EQ(pool.tenant_overflow_size(), 0u);  // nothing orphaned
  EXPECT_EQ(done.load(), 3);
}

TEST(ThreadPool, RetireTenantRefusesWhileWorkIsPending) {
  ResizableThreadPool pool(1, 1);
  std::atomic<bool> release{false};
  std::atomic<bool> running{false};
  pool.submit([&] {
    running.store(true);
    while (!release.load()) std::this_thread::sleep_for(1ms);
  }, /*tenant=*/5);
  while (!running.load()) std::this_thread::sleep_for(1ms);
  pool.submit([] {}, /*tenant=*/5);        // queued behind the running task
  EXPECT_FALSE(pool.retire_tenant(5));     // queued + running: must refuse
  release.store(true);
  pool.wait_idle();
  EXPECT_TRUE(pool.retire_tenant(5));      // drained: retire succeeds
  EXPECT_FALSE(pool.retire_tenant(5));     // and is not repeatable
  EXPECT_FALSE(pool.retire_tenant(0));     // untagged ids have no state
}

TEST(ThreadPool, GrantDeficitOutranksSurplusTenant) {
  // Deterministic pick-order check on a held worker: with one worker and a
  // backlog from two tenants, the tenant below its grant is served before
  // the zero-grant one regardless of submission order.
  ResizableThreadPool pool(1, 1);
  pool.set_tenant_grant(1, 1);
  std::atomic<bool> release{false};
  pool.submit([&] {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  std::this_thread::sleep_for(5ms);
  std::vector<int> order;
  std::mutex order_mu;
  const auto record = [&](int who) {
    std::lock_guard lock(order_mu);
    order.push_back(who);
  };
  // Zero-grant tenant 2 submits first (and would win a LIFO race: its task
  // is... oldest; under legacy LIFO the NEWEST wins, i.e. tenant 1 — so
  // interleave to make the distinction real: 2, 1, 2: legacy LIFO order
  // would be 2(last), 1, 2(first); weighted order is 1 first).
  pool.submit([&] { record(2); }, 2);
  pool.submit([&] { record(1); }, 1);
  pool.submit([&] { record(2); }, 2);
  release.store(true);
  pool.wait_idle();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);  // granted tenant served first
}

TEST(ThreadPool, TenantOrderingKnobControlsDispatchOrder) {
  // One worker, blocked on an untagged gate task while tagged tasks queue
  // up in tenant 7's run queue — releasing the gate then drains the queue
  // in exactly the order the knob dictates.
  ResizableThreadPool pool(1, 1);
  std::mutex order_mu;
  std::vector<int> order;
  const auto record = [&](int k) {
    std::lock_guard lock(order_mu);
    order.push_back(k);
  };
  const auto run_tagged = [&](TenantOrdering ordering) {
    {
      std::lock_guard lock(order_mu);
      order.clear();
    }
    pool.set_tenant_ordering(7, ordering);
    std::atomic<bool> gate_running{false};
    std::atomic<bool> release{false};
    pool.submit([&] {
      gate_running.store(true);
      while (!release.load()) std::this_thread::sleep_for(1ms);
    });
    while (!gate_running.load()) std::this_thread::sleep_for(1ms);
    for (int k = 1; k <= 3; ++k) {
      pool.submit([&record, k] { record(k); }, /*tenant=*/7);
    }
    release.store(true);
    pool.wait_idle();
    std::lock_guard lock(order_mu);
    return order;
  };
  EXPECT_EQ(run_tagged(TenantOrdering::kFifo), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(pool.tenant_ordering(7), TenantOrdering::kFifo);
  EXPECT_EQ(run_tagged(TenantOrdering::kLifo), (std::vector<int>{3, 2, 1}));
  // Retirement resets the knob: a recycled id starts at the default again.
  EXPECT_TRUE(pool.retire_tenant(7));
  EXPECT_EQ(pool.tenant_ordering(7), TenantOrdering::kLifo);
}

TEST(ThreadPool, DefaultBackendIsThreadAndResettable) {
  ResizableThreadPool pool(1, 2);
  ASSERT_NE(pool.backend(), nullptr);
  EXPECT_STREQ(pool.backend()->name(), "thread");
  EXPECT_FALSE(pool.backend()->remote());
  EXPECT_EQ(pool.provision_failures(), 0u);
  pool.set_backend(nullptr);  // no-op: already the built-in default
  EXPECT_STREQ(pool.backend()->name(), "thread");
  std::atomic<int> done{0};
  pool.submit([&] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 1);
}

}  // namespace
}  // namespace askel
