// Unit tests for runtime/: LP gauge and the resizable thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "runtime/thread_pool.hpp"

namespace askel {
namespace {

using namespace std::chrono_literals;

TEST(LpGauge, TracksBusyAndPeak) {
  ManualClock clock;
  LpGauge g(&clock);
  EXPECT_EQ(g.busy(), 0);
  g.task_started();
  g.task_started();
  EXPECT_EQ(g.busy(), 2);
  EXPECT_EQ(g.peak(), 2);
  g.task_finished();
  EXPECT_EQ(g.busy(), 1);
  EXPECT_EQ(g.peak(), 2);
}

TEST(LpGauge, RecordsSeries) {
  ManualClock clock;
  LpGauge g(&clock);
  g.task_started();
  clock.advance(1.0);
  g.task_finished();
  const auto s = g.series().samples();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], (Sample{0.0, 1.0}));
  EXPECT_EQ(s[1], (Sample{1.0, 0.0}));
}

TEST(LpGauge, ResetClears) {
  LpGauge g;
  g.task_started();
  g.task_finished();
  g.reset();
  EXPECT_EQ(g.busy(), 0);
  EXPECT_EQ(g.peak(), 0);
  EXPECT_EQ(g.series().size(), 0u);
}

TEST(BusyScope, RaiiPairsStartFinish) {
  LpGauge g;
  {
    BusyScope b(g);
    EXPECT_EQ(g.busy(), 1);
  }
  EXPECT_EQ(g.busy(), 0);
}

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ResizableThreadPool pool(2, 4);
  std::atomic<int> done{0};
  for (int k = 0; k < 100; ++k) pool.submit([&] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, ClampsInitialLp) {
  ResizableThreadPool pool(99, 4);
  EXPECT_EQ(pool.target_lp(), 4);
  ResizableThreadPool pool2(0, 4);
  EXPECT_EQ(pool2.target_lp(), 1);
}

TEST(ThreadPool, SetTargetLpClampsToBounds) {
  ResizableThreadPool pool(1, 8);
  EXPECT_EQ(pool.set_target_lp(100), 8);
  EXPECT_EQ(pool.set_target_lp(-3), 1);
}

TEST(ThreadPool, TasksFromTasksComplete) {
  ResizableThreadPool pool(1, 2);
  std::atomic<int> done{0};
  pool.submit([&] {
    for (int k = 0; k < 10; ++k) pool.submit([&] { done.fetch_add(1); });
  });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPool, ConcurrencyIsBoundedByTargetLp) {
  ResizableThreadPool pool(2, 8);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int k = 0; k < 16; ++k) {
    pool.submit([&] {
      const int c = concurrent.fetch_add(1) + 1;
      int p = peak.load();
      while (c > p && !peak.compare_exchange_weak(p, c)) {
      }
      std::this_thread::sleep_for(10ms);
      concurrent.fetch_sub(1);
    });
  }
  pool.wait_idle();
  EXPECT_LE(peak.load(), 2);
  EXPECT_GE(peak.load(), 2);  // enough work to saturate both workers
}

TEST(ThreadPool, GrowingLpIncreasesConcurrency) {
  ResizableThreadPool pool(1, 8);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int k = 0; k < 24; ++k) {
    pool.submit([&] {
      const int c = concurrent.fetch_add(1) + 1;
      int p = peak.load();
      while (c > p && !peak.compare_exchange_weak(p, c)) {
      }
      std::this_thread::sleep_for(10ms);
      concurrent.fetch_sub(1);
    });
  }
  std::this_thread::sleep_for(20ms);
  pool.set_target_lp(6);
  pool.wait_idle();
  EXPECT_GT(peak.load(), 2);
  EXPECT_LE(peak.load(), 6);
}

TEST(ThreadPool, ShrinkTakesEffectAtTaskBoundary) {
  ResizableThreadPool pool(4, 4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak_after_shrink{0};
  std::atomic<bool> shrunk{false};
  for (int k = 0; k < 40; ++k) {
    pool.submit([&] {
      const int c = concurrent.fetch_add(1) + 1;
      if (shrunk.load()) {
        int p = peak_after_shrink.load();
        while (c > p && !peak_after_shrink.compare_exchange_weak(p, c)) {
        }
      }
      std::this_thread::sleep_for(5ms);
      concurrent.fetch_sub(1);
    });
  }
  std::this_thread::sleep_for(12ms);
  pool.set_target_lp(1);
  shrunk.store(true);
  pool.wait_idle();
  // Tasks that started before the shrink may still be draining right at the
  // flag flip; after that instant at most 1 + (lp_before - 1) finishing
  // stragglers can overlap. The strict bound soon after is 1; allow the
  // stragglers.
  EXPECT_LE(peak_after_shrink.load(), 4);
  EXPECT_EQ(pool.target_lp(), 1);
}

TEST(ThreadPool, SpawnsWorkersLazily) {
  ResizableThreadPool pool(2, 16);
  EXPECT_EQ(pool.spawned_workers(), 2);
  pool.set_target_lp(5);
  EXPECT_EQ(pool.spawned_workers(), 5);
  pool.set_target_lp(2);
  // Parked, not destroyed.
  EXPECT_EQ(pool.spawned_workers(), 5);
  pool.set_target_lp(4);
  EXPECT_EQ(pool.spawned_workers(), 5);
}

TEST(ThreadPool, LpHistoryRecordsChanges) {
  ResizableThreadPool pool(1, 8);
  pool.set_target_lp(3);
  pool.set_target_lp(3);  // no-op, not recorded
  pool.set_target_lp(2);
  const auto h = pool.lp_history().samples();
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h[0].value, 1.0);
  EXPECT_EQ(h[1].value, 3.0);
  EXPECT_EQ(h[2].value, 2.0);
}

TEST(ThreadPool, GaugeSeesBusyWorkers) {
  ResizableThreadPool pool(3, 3);
  std::atomic<int> go{0};
  for (int k = 0; k < 3; ++k) {
    pool.submit([&] {
      go.fetch_add(1);
      while (go.load() < 3) std::this_thread::yield();
      std::this_thread::sleep_for(10ms);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(pool.gauge().peak(), 3);
  EXPECT_EQ(pool.gauge().busy(), 0);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ResizableThreadPool pool(1, 1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ProvisionDelayPostponesEffectiveGrowth) {
  ResizableThreadPool pool(1, 8);
  pool.set_provision_delay(0.05);
  pool.set_target_lp(4);
  // The request is visible immediately; the workers join later.
  EXPECT_EQ(pool.target_lp(), 4);
  EXPECT_EQ(pool.effective_lp(), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(pool.effective_lp(), 4);
}

TEST(ThreadPool, ProvisionDelayDoesNotSlowShrink) {
  ResizableThreadPool pool(4, 8);
  pool.set_provision_delay(10.0);  // would take "forever" for growth
  pool.set_target_lp(2);           // shrink is local parking: immediate
  EXPECT_EQ(pool.target_lp(), 2);
  EXPECT_EQ(pool.effective_lp(), 2);
}

TEST(ThreadPool, PendingProvisionIsCancelledOnDestruction) {
  // Must not hang for the 10 s timer.
  ResizableThreadPool pool(1, 8);
  pool.set_provision_delay(10.0);
  pool.set_target_lp(8);
  EXPECT_EQ(pool.effective_lp(), 1);
  // Destructor runs here and must cancel the timer promptly.
}

TEST(ThreadPool, StaleProvisionNeverExceedsLatestRequest) {
  ResizableThreadPool pool(1, 8);
  pool.set_provision_delay(0.05);
  pool.set_target_lp(6);  // join scheduled for +50ms
  pool.set_target_lp(2);  // immediate shrink; the pending 6 is now stale
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(pool.target_lp(), 2);
  EXPECT_EQ(pool.effective_lp(), 2);  // the stale 6 must have been discarded
}

TEST(ThreadPool, WithoutDelayTargetAndEffectiveCoincide) {
  ResizableThreadPool pool(2, 8);
  pool.set_target_lp(5);
  EXPECT_EQ(pool.target_lp(), 5);
  EXPECT_EQ(pool.effective_lp(), 5);
}

TEST(ThreadPool, StealsMoveWorkAcrossWorkers) {
  // One worker fans out children onto its own deque then blocks inside its
  // task; the other runnable worker must steal the children.
  ResizableThreadPool pool(2, 2);
  std::atomic<int> done{0};
  std::atomic<bool> release{false};
  pool.submit([&] {
    for (int k = 0; k < 8; ++k) {
      pool.submit([&done] { done.fetch_add(1); });
    }
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (done.load() < 8 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(done.load(), 8);  // completed while the fanning worker is pinned
  EXPECT_GE(pool.steals(), 1u);
  release.store(true);
  pool.wait_idle();
}

TEST(ThreadPool, RepeatedDelayedGrowthDoesNotAccumulateState) {
  // Regression guard for the provision-timer leak: every delayed grow used
  // to append a jthread that was never reaped. After many grow/shrink
  // cycles the pool must still resize correctly and shut down promptly.
  ResizableThreadPool pool(1, 8);
  pool.set_provision_delay(0.01);
  for (int k = 0; k < 30; ++k) {
    pool.set_target_lp(4);
    pool.set_target_lp(1);
  }
  pool.set_target_lp(6);
  std::this_thread::sleep_for(60ms);
  EXPECT_EQ(pool.effective_lp(), 6);
  // Destructor must cancel any stragglers without hanging.
}

TEST(ThreadPool, QueuedCountsBacklog) {
  ResizableThreadPool pool(1, 1);
  std::atomic<bool> release{false};
  pool.submit([&] {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  std::this_thread::sleep_for(5ms);
  pool.submit([] {});
  pool.submit([] {});
  EXPECT_EQ(pool.queued(), 2u);
  release.store(true);
  pool.wait_idle();
  EXPECT_EQ(pool.queued(), 0u);
}

}  // namespace
}  // namespace askel
