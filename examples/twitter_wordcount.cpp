// The paper's §5 evaluation workload as a runnable example: autonomic
// hashtag / commented-user count over a synthetic tweet corpus with a WCT
// goal, showing the controller raising the level of parallelism mid-run.
//
//   $ ./twitter_wordcount [goal_seconds_at_paper_scale] [scale]
//
// Defaults: goal 9.5 (the paper's scenario 1), scale 0.1 (the paper's 12.5 s
// sequential profile compressed to ≈1.25 s).

#include <cstdlib>
#include <iostream>

#include "askel.hpp"
#include "util/csv.hpp"
#include "workload/wordcount.hpp"

using namespace askel;

int main(int argc, char** argv) {
  ScenarioConfig cfg;
  cfg.wct_goal = argc > 1 ? std::atof(argv[1]) : 9.5;
  cfg.timings.scale = argc > 2 ? std::atof(argv[2]) : 0.1;
  cfg.corpus.num_tweets = 5000;

  std::cout << "Workload : map(fs, map(fs, seq(fe), fm), fm) over "
            << cfg.corpus.num_tweets << " synthetic tweets\n";
  std::cout << "Goal     : " << cfg.wct_goal << " paper-seconds  (scaled: "
            << cfg.wct_goal * cfg.timings.scale << " s)\n";
  std::cout << "Seq WCT  : " << cfg.timings.sequential_wct() << " s\n\n";

  const ScenarioResult res = run_wordcount_scenario(cfg);

  std::cout << "finished in " << res.wct << " s  (goal "
            << (res.goal_met ? "MET" : "MISSED") << ")\n";
  std::cout << "peak busy threads: " << res.peak_busy << "\n";
  std::cout << "controller evaluations: " << res.controller_evaluations << "\n";
  std::cout << "\nLP decisions:\n";
  for (const auto& a : res.actions) {
    std::cout << "  t=" << fmt(a.t, 3) << "s  LP " << a.from_lp << " -> " << a.to_lp
              << "  (" << to_string(a.reason) << ")\n";
  }

  std::cout << "\ntop tokens:\n";
  std::vector<std::pair<long, std::string>> ranked;
  for (const auto& [token, n] : res.counts) ranked.emplace_back(n, token);
  std::sort(ranked.rbegin(), ranked.rend());
  for (std::size_t k = 0; k < std::min<std::size_t>(5, ranked.size()); ++k) {
    std::cout << "  " << ranked[k].second << " : " << ranked[k].first << "\n";
  }
  return res.counts == res.expected ? 0 : 1;
}
