// Autonomic divide-and-conquer beyond the paper's map-only evaluation:
// a d&C mergesort with sleep-weighted leaves under a WCT goal. Demonstrates
// the d&C state machine (|fc| = recursion depth) feeding the controller.
//
//   $ ./autonomic_mergesort [goal_seconds]

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <random>

#include "askel.hpp"
#include "util/csv.hpp"
#include "workload/calibrated.hpp"

using namespace askel;
using Vec = std::vector<int>;

int main(int argc, char** argv) {
  const double goal = argc > 1 ? std::atof(argv[1]) : 0.35;

  ResizableThreadPool pool(1, 16);
  EventBus bus;
  EstimateRegistry reg(0.5);
  TrackerSet trackers(reg);
  bus.add_listener(trackers.as_listener());
  AutonomicController controller(pool, trackers);
  bus.add_listener(controller.as_listener());
  Engine engine(pool, bus);

  // Divide while the slice is large; leaves sort ~4k elements each and carry
  // a small calibrated sleep so the recursion tree has measurable work.
  auto fc = condition_muscle<Vec>("big", [](const Vec& v) { return v.size() > 4096; });
  auto fs = split_muscle<Vec, Vec>("halve", [](Vec v) {
    simulate_work(0.002);
    const std::size_t half = v.size() / 2;
    return std::vector<Vec>{Vec(v.begin(), v.begin() + half),
                            Vec(v.begin() + half, v.end())};
  });
  auto leaf = execute_muscle<Vec, Vec>("sort", [](Vec v) {
    simulate_work(0.02);
    std::sort(v.begin(), v.end());
    return v;
  });
  auto fm = merge_muscle<Vec, Vec>("merge", [](std::vector<Vec> parts) {
    simulate_work(0.002);
    Vec out;
    for (Vec& p : parts) {
      Vec next(out.size() + p.size());
      std::merge(out.begin(), out.end(), p.begin(), p.end(), next.begin());
      out = std::move(next);
    }
    return out;
  });
  auto skel = DaC(fc, fs, Seq(leaf), fm);

  Vec data(64 * 1024);
  std::mt19937 rng(7);
  for (int& x : data) x = static_cast<int>(rng());

  // Warm-up run: learns t(m) and |fc| (recursion depth), no goal pressure.
  std::cout << "warm-up run (learning estimates)...\n";
  skel.input(data, engine).get();
  std::cout << "learned recursion depth |fc| = "
            << reg.cardinality(fc.m->id()).value_or(-1) << "\n";

  // Goal-driven run: the controller adapts LP from the estimates.
  trackers.reset();
  pool.set_target_lp(1);
  controller.arm(goal);
  const TimePoint t0 = default_clock().now();
  Vec sorted = skel.input(data, engine).get();
  const double wct = default_clock().now() - t0;
  controller.disarm();

  std::cout << "goal " << goal << " s -> finished in " << fmt(wct, 3) << " s ("
            << (wct <= goal ? "MET" : "MISSED") << ")\n";
  std::cout << "peak busy threads: " << pool.gauge().peak() << "\n";
  for (const auto& a : controller.actions()) {
    std::cout << "  t=" << fmt(a.t - t0, 3) << "s  LP " << a.from_lp << " -> "
              << a.to_lp << "  (" << to_string(a.reason) << ")\n";
  }
  return std::is_sorted(sorted.begin(), sorted.end()) ? 0 : 1;
}
