// Quickstart: the paper's Listing 1 in askel — a nested map skeleton,
// map(fs, map(fs, seq(fe), fm), fm), summing squares of a vector.
//
//   $ ./quickstart
//
// Walks through: defining muscles, composing skeletons, running an input
// through the engine, and reading the result from a future.

#include <iostream>
#include <numeric>
#include <vector>

#include "askel.hpp"

using namespace askel;

int main() {
  // 1. The execution substrate: a resizable pool and an event bus. The pool
  //    starts with 2 runnable workers and may grow to 8.
  ResizableThreadPool pool(/*initial_lp=*/2, /*max_lp=*/8);
  EventBus bus;
  Engine engine(pool, bus);

  // 2. Muscle definitions — the sequential business logic.
  //    fs : vector<int> → {vector<int>}   (split in two halves)
  //    fe : vector<int> → long            (sum of squares of a part)
  //    fm : {long} → long                 (add partial sums)
  auto fs = split_muscle<std::vector<int>, std::vector<int>>(
      "halve", [](std::vector<int> v) {
        const std::size_t half = v.size() / 2;
        return std::vector<std::vector<int>>{
            std::vector<int>(v.begin(), v.begin() + half),
            std::vector<int>(v.begin() + half, v.end())};
      });
  auto fe = execute_muscle<std::vector<int>, long>("sumsq", [](std::vector<int> v) {
    long acc = 0;
    for (const int x : v) acc += static_cast<long>(x) * x;
    return acc;
  });
  auto fm = merge_muscle<long, long>("add", [](std::vector<long> parts) {
    return std::accumulate(parts.begin(), parts.end(), 0L);
  });

  // 3. Skeleton definition — same shape as the paper's Listing 1, with the
  //    split muscle shared between both nesting levels.
  Skel<std::vector<int>, long> nested = Map(fs, Seq(fe), fm);
  Skel<std::vector<int>, long> main_skeleton = Map(fs, nested, fm);

  // 4. Input a parameter; do something else; wait for the result.
  std::vector<int> input(1000);
  std::iota(input.begin(), input.end(), 1);
  Future<long> future = main_skeleton.input(input, engine);

  const long result = future.get();
  std::cout << "sum of squares 1..1000 = " << result << "\n";
  std::cout << "expected                = " << 1000L * 1001 * 2001 / 6 << "\n";
  return result == 1000L * 1001 * 2001 / 6 ? 0 : 1;
}
