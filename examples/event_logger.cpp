// The paper's Listing 2: a generic listener implementing a logger as a
// non-functional concern — no muscle code is touched.
//
//   $ ./event_logger
//
// Prints, for every event of a nested-map execution: the current skeleton,
// WHEN/WHERE, the instance index i, and the executing thread.

#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>

#include "askel.hpp"
#include "skel/trace.hpp"

using namespace askel;

int main() {
  ResizableThreadPool pool(2, 4);
  EventBus bus;
  Engine engine(pool, bus);

  std::mutex log_mu;
  // The generic listener of Listing 2: registered on ALL events raised
  // during the skeleton execution; may also rewrite the partial solution
  // (here it only observes).
  bus.add_listener(std::make_shared<GenericListener>(
      [&log_mu](std::any param, const Event& ev) {
        std::ostringstream line;
        line << "CURRSKEL: " << (ev.node ? ev.node->name() : "?")
             << "  WHEN/WHERE: " << to_string(ev.when) << "/" << to_string(ev.where)
             << "  INDEX: " << ev.exec_id << "  TRACE: " << to_string(ev.trace)
             << "  THREAD: " << std::this_thread::get_id();
        if (ev.where == Where::kSplit && ev.when == When::kAfter)
          line << "  fsCard: " << ev.cardinality;
        std::lock_guard lock(log_mu);
        std::cout << line.str() << "\n";
        return param;  // partial solution, unchanged
      }));

  auto fs = split_muscle<int, int>("fs", [](int n) {
    return std::vector<int>{n, n + 1};
  });
  auto fe = execute_muscle<int, int>("fe", [](int x) { return x * 10; });
  auto fm = merge_muscle<int, int>("fm", [](std::vector<int> v) {
    int acc = 0;
    for (const int x : v) acc += x;
    return acc;
  });

  auto skel = Map(fs, Map(fs, Seq(fe), fm), fm);
  const int result = skel.input(1, engine).get();
  std::cout << "result = " << result << "\n";
  return 0;
}
