// The paper's §6 distributed sketch, simulated: "It could be achieved by a
// centralised distribution of tasks to a distributed set of workers, adding
// or removing workers like adding or removing threads in a centralised
// manner."
//
// Two distributed realities are modelled on top of the same autonomic stack:
//  * per-task dispatch latency — every muscle pays a round-trip cost, which
//    the estimators absorb transparently (they only see durations);
//  * worker-provisioning delay — a remote worker joins `provision_delay`
//    seconds after the controller asks for it, so LP increases land late.
//
// The run compares local (instant workers) vs distributed (200 ms joins)
// under the same WCT goal: the controller compensates by holding a larger
// allocation, and the figures show the delayed effect of each decision.
//
//   $ ./distributed_simulation [goal_seconds] [provision_delay_seconds]

#include <cstdlib>
#include <iostream>

#include "askel.hpp"
#include "util/csv.hpp"
#include "workload/wordcount.hpp"

using namespace askel;

namespace {

struct RunResult {
  double wct = 0.0;
  int peak_busy = 0;
  std::vector<AutonomicController::Action> actions;
  bool ok = false;
};

RunResult run(double goal, Duration provision_delay, Duration dispatch_latency) {
  // The §5 workload, compressed; dispatch latency is added uniformly to every
  // muscle by inflating the calibrated profile (a remote call wraps each
  // muscle execution).
  PaperTimings t;
  t.scale = 0.06;
  t.execute += dispatch_latency;
  t.inner_merge += dispatch_latency;
  t.inner_split += dispatch_latency;

  ResizableThreadPool pool(1, 24);
  pool.set_provision_delay(provision_delay);
  EventBus bus;
  EstimateRegistry reg(0.5);
  TrackerSet trackers(reg);
  bus.add_listener(trackers.as_listener());
  ControllerConfig ccfg;
  ccfg.min_interval = 0.1 * t.scale;
  AutonomicController controller(pool, trackers, &default_clock(), ccfg);
  bus.add_listener(controller.as_listener());
  Engine engine(pool, bus);

  WordcountSkeleton ws = make_wordcount_skeleton(t, /*jitter_seed=*/7);
  TweetCorpusConfig ccorp;
  ccorp.num_tweets = 2000;
  auto tweets =
      std::make_shared<const std::vector<std::string>>(generate_tweets(ccorp));
  TweetDoc doc;
  doc.tweets = tweets;
  doc.end = tweets->size();

  RunResult r;
  const TimePoint t0 = default_clock().now();
  controller.arm(goal * t.scale, 24);
  const CountsPart out = ws.skeleton.input(doc, engine).get();
  r.wct = default_clock().now() - t0;
  controller.disarm();
  r.peak_busy = pool.gauge().peak();
  r.actions = controller.actions();
  for (auto& a : r.actions) a.t -= t0;
  r.ok = out.counts == count_tokens(doc);
  return r;
}

void report(const char* name, const RunResult& r, double goal_scaled) {
  std::cout << name << ": wct=" << fmt(r.wct, 3) << " s ("
            << (r.wct <= goal_scaled ? "goal MET" : "goal MISSED")
            << ")  peak_busy=" << r.peak_busy << "\n";
  for (const auto& a : r.actions) {
    std::cout << "    t=" << fmt(a.t * 1000, 1) << "ms  LP " << a.from_lp << " -> "
              << a.to_lp << "  (" << to_string(a.reason) << ")\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double goal = argc > 1 ? std::atof(argv[1]) : 9.5;  // paper-seconds
  const Duration join_delay = argc > 2 ? std::atof(argv[2]) : 0.2;
  const double scale = 0.06;

  std::cout << "Distributed-backend simulation (paper §6 future work)\n";
  std::cout << "goal " << goal << " paper-seconds (" << goal * scale
            << " s scaled); remote worker join delay " << join_delay << " s\n\n";

  const RunResult local = run(goal, 0.0, 0.0);
  report("local multicore     ", local, goal * scale);

  const RunResult dist = run(goal, join_delay, 0.0);
  report("distributed workers ", dist, goal * scale);

  const RunResult dist_lat = run(goal, join_delay, 0.010);
  report("dist + 10ms dispatch", dist_lat, goal * scale);

  std::cout << "\nThe controller's decisions are identical in kind; the "
               "distributed runs show them taking effect late (worker joins) "
               "and the latency run shows inflated muscle estimates being "
               "absorbed transparently.\n";
  return local.ok && dist.ok && dist_lat.ok ? 0 : 1;
}
