// Task-parallel patterns: a farm of two-stage pipes processing a stream of
// independent requests, with while/if skeletons in the second stage.
// Exercises farm, pipe, if and while together on many concurrent inputs.
//
//   $ ./pipeline_farm

#include <iostream>

#include "askel.hpp"

using namespace askel;

namespace {

struct Request {
  int id = 0;
  long value = 0;
};

}  // namespace

int main() {
  ResizableThreadPool pool(4, 8);
  EventBus bus;
  Engine engine(pool, bus);

  // Stage 1: "decode" — derive a working value from the request id.
  auto decode = execute_muscle<Request, Request>("decode", [](Request r) {
    r.value = r.id * 1000 + 1;
    return r;
  });

  // Stage 2: iterate a Collatz-style reduction while the value is large
  // (while skeleton), then classify it (if skeleton).
  auto big = condition_muscle<Request>("big", [](const Request& r) {
    return r.value > 10;
  });
  auto shrink = execute_muscle<Request, Request>("shrink", [](Request r) {
    r.value = r.value % 2 == 0 ? r.value / 2 : 3 * r.value + 1;
    return r;
  });
  auto even = condition_muscle<Request>("even", [](const Request& r) {
    return r.value % 2 == 0;
  });
  auto tag_even = execute_muscle<Request, std::string>("tag_even", [](Request r) {
    return "req" + std::to_string(r.id) + ":even:" + std::to_string(r.value);
  });
  auto tag_odd = execute_muscle<Request, std::string>("tag_odd", [](Request r) {
    return "req" + std::to_string(r.id) + ":odd:" + std::to_string(r.value);
  });

  auto stage2 = Pipe(While(big, Seq(shrink)), If(even, Seq(tag_even), Seq(tag_odd)));
  auto service = Farm(Pipe(Seq(decode), stage2));

  // A stream of concurrent requests through the farm.
  std::vector<Future<std::string>> results;
  for (int id = 0; id < 12; ++id) results.push_back(service.input(Request{id, 0}, engine));

  for (auto& fut : results) std::cout << fut.get() << "\n";
  std::cout << "peak concurrency: " << pool.gauge().peak() << "\n";
  return 0;
}
